// Golden-bytes compatibility pins for the classic wire format. The hex
// fixtures below are the kClassic serialization of small deterministic
// sketches, checked in verbatim: future codec work that changes a single
// classic byte — or breaks the reader on an old stream — fails here, not in
// production against a peer running last year's build. (Compact streams are
// deliberately NOT pinned: kCompact is negotiated per exchange and its
// layout may evolve with the header version; kClassic is the compatibility
// floor and must stay frozen.)
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/point_store.h"
#include "sketch/iblt.h"
#include "sketch/riblt.h"
#include "sketch/strata.h"
#include "util/key_stream.h"
#include "util/serialize.h"
#include "util/wire.h"

namespace rsr {
namespace {

// Captured from the PR-8 era writers (seed/content in each builder below);
// regenerating them is a compatibility break, not a refresh.
const char kIbltHex[] =
    "02aaf0d3f4afeebcb73cf4c0e43106fef0f3fd8fcebca63c10feaa6502e9d8d1"
    "e3f793d88a17cc9b6d6000000000000006a8c0dff0bff8fffff10181da2c8c04"
    "9598ae9ae8cba7e4e601a97f0fb804d6b0ac8db0b6c3d9cd01912486e902d4e0"
    "a7e9dfdcf9ee78fe520a6c04bf88fa8eb8d9e2aca20147d3afb10295f8a9fa97"
    "b7de9b9e01b3134b8004fe90f49df0b2c5d9440a92ee5d04d6b0ac8db0b6c3d9"
    "cd01912486e9020e3a060e3e0523910000000038f8011b6d0636c6041c740309"
    "2701071d06124e0636c6";
const char kRibltHex[] =
    "06a4b88c979dccdebfd401f3e4d8a615f806f8060283dacb8cadc6d2dad101b7"
    "d7c0dd034aca010498d0dde4e8b294d58d03b5dbb0a711d004d0040495f691d8"
    "bbecc1fabb01d1a7b9f2078604860306a792d8a3ca92b19aa603d798d0db1ec2"
    "07c2080283dacb8cadc6d2dad101b7d7c0dd034aca01048fc2fabee1df9cc598"
    "02b6f6c68c10f202f2030283dacb8cadc6d2dad101b7d7c0dd034aca0106adc6"
    "efbca49fd6cfc902f2c9c2c116d608d607";
const char kStrataHex[] =
    "06d7afaed6b2a7f6e84fd96904a7ced58dbdb687e76fd90206dbb69cc4ceeffa"
    "e4d001783104abd7e79fc1fe8bebf001785a02e8d19bdba791e9972a3c8b0898"
    "b0e080a88098980a3ce0048c99b292fcc88c8c9f01a15806fcf8c9c9f3d9fd83"
    "bf01a13306baf3eae4fd94f9c5de01b04d0000000006baf3eae4fd94f9c5de01"
    "b04d0000000004f1e482bbefeb92b1da01dbae02cb97e8df92ffebf4046be304"
    "f1e482bbefeb92b1da01dbae02cb97e8df92ffebf4046be302d7ae9af2beb6f7"
    "e86facfc0000000002d7ae9af2beb6f7e86facfc000000000000000002d7ae9a"
    "f2beb6f7e86facfc02d7ae9af2beb6f7e86facfc0000000002a2c682d2d1b5e3"
    "dd7452510000000002a2c682d2d1b5e3dd745251000000000000000002a2c682"
    "d2d1b5e3dd7452510000000002a2c682d2d1b5e3dd745251";
const char kKeyStreamHex[] =
    "05157c4a7fb979379e2af894fe72f36e3c3f74df7d2c6da6da54f029fde5e6dd"
    "78696c747c9f601517";

std::vector<uint8_t> FromHex(const char* hex) {
  std::string s(hex);
  std::vector<uint8_t> bytes;
  bytes.reserve(s.size() / 2);
  for (size_t i = 0; i + 1 < s.size(); i += 2) {
    auto nib = [](char c) -> uint8_t {
      return c <= '9' ? static_cast<uint8_t>(c - '0')
                      : static_cast<uint8_t>(c - 'a' + 10);
    };
    bytes.push_back(static_cast<uint8_t>((nib(s[i]) << 4) | nib(s[i + 1])));
  }
  return bytes;
}

IbltParams GoldenIbltParams() {
  IbltParams p;
  p.num_cells = 12;
  p.num_hashes = 4;
  p.value_size = 3;
  p.checksum_bytes = 4;
  p.seed = 2024;
  return p;
}

Iblt GoldenIblt() {
  Iblt t(GoldenIbltParams());
  for (uint64_t k = 1; k <= 5; ++k) {
    std::vector<uint8_t> v = {static_cast<uint8_t>(k),
                              static_cast<uint8_t>(k * 7),
                              static_cast<uint8_t>(k * 29)};
    t.InsertKv(k * 0x9e3779b97f4a7c15ull, v);
  }
  return t;
}

RibltParams GoldenRibltParams() {
  RibltParams p;
  p.num_cells = 9;
  p.num_hashes = 3;
  p.dim = 2;
  p.delta = 255;
  p.seed = 2025;
  return p;
}

Riblt GoldenRiblt() {
  PointStore s(2);
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= 6; ++k) {
    Coord* row = s.AppendRow();
    row[0] = static_cast<Coord>((k * 37) % 256);
    row[1] = static_cast<Coord>((k * 101) % 256);
    keys.push_back(k * 0xd1b54a32d192ed03ull);
  }
  Riblt t(GoldenRibltParams());
  t.InsertMany(keys, s);
  return t;
}

StrataParams GoldenStrataParams() {
  StrataParams p;
  p.num_strata = 4;
  p.cells_per_stratum = 8;
  p.num_hashes = 4;
  p.checksum_bytes = 2;
  p.seed = 2026;
  return p;
}

TEST(GoldenClassicTest, IbltWriterMatchesPinnedBytes) {
  ByteWriter w;
  GoldenIblt().WriteTo(&w, WireCodec::kClassic);
  EXPECT_EQ(w.buffer(), FromHex(kIbltHex));
}

TEST(GoldenClassicTest, IbltReaderDecodesPinnedBytes) {
  std::vector<uint8_t> pinned = FromHex(kIbltHex);
  ByteReader r(pinned);
  auto parsed = Iblt::ReadFrom(&r, GoldenIbltParams(), WireCodec::kClassic);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(r.FinishAndCheckConsumed().ok());
  // Byte-for-byte round trip: the parsed table re-serializes to the exact
  // pinned stream, and its content decodes to the original five pairs.
  ByteWriter again;
  parsed->WriteTo(&again, WireCodec::kClassic);
  EXPECT_EQ(again.buffer(), pinned);
  IbltDecodeResult decoded = parsed->Decode();
  EXPECT_TRUE(decoded.complete);
  EXPECT_EQ(decoded.entries.size(), 5u);
}

TEST(GoldenClassicTest, RibltWriterMatchesPinnedBytes) {
  ByteWriter w;
  GoldenRiblt().WriteTo(&w, WireCodec::kClassic);
  EXPECT_EQ(w.buffer(), FromHex(kRibltHex));
}

TEST(GoldenClassicTest, RibltReaderDecodesPinnedBytes) {
  std::vector<uint8_t> pinned = FromHex(kRibltHex);
  ByteReader r(pinned);
  auto parsed = Riblt::ReadFrom(&r, GoldenRibltParams(), WireCodec::kClassic);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(r.FinishAndCheckConsumed().ok());
  ByteWriter again;
  parsed->WriteTo(&again, WireCodec::kClassic);
  EXPECT_EQ(again.buffer(), pinned);
}

TEST(GoldenClassicTest, StrataWriterMatchesPinnedBytes) {
  StrataEstimator e(GoldenStrataParams());
  for (uint64_t k = 1; k <= 10; ++k) e.Insert(k * 0x2545f4914f6cdd1dull);
  ByteWriter w;
  e.WriteTo(&w, WireCodec::kClassic);
  EXPECT_EQ(w.buffer(), FromHex(kStrataHex));
}

TEST(GoldenClassicTest, StrataReaderDecodesPinnedBytes) {
  std::vector<uint8_t> pinned = FromHex(kStrataHex);
  ByteReader r(pinned);
  auto parsed =
      StrataEstimator::ReadFrom(&r, GoldenStrataParams(), WireCodec::kClassic);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(r.FinishAndCheckConsumed().ok());
  ByteWriter again;
  parsed->WriteTo(&again, WireCodec::kClassic);
  EXPECT_EQ(again.buffer(), pinned);
}

TEST(GoldenClassicTest, KeyStreamMatchesPinnedBytes) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= 5; ++k) keys.push_back(k * 0x9e3779b97f4a7c15ull);
  ByteWriter w;
  WriteKeyStream(keys, &w, WireCodec::kClassic);
  EXPECT_EQ(w.buffer(), FromHex(kKeyStreamHex));

  std::vector<uint8_t> pinned = FromHex(kKeyStreamHex);
  ByteReader r(pinned);
  auto parsed = ReadKeyStream(&r, WireCodec::kClassic, /*max_keys=*/64);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(r.FinishAndCheckConsumed().ok());
  EXPECT_EQ(*parsed, keys);  // classic preserves writer order
}

}  // namespace
}  // namespace rsr
