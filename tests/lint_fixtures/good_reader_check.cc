// Known-good fixture for the reader-check rule: each of the accepted
// discharge patterns — checking the sticky state, poisoning explicitly,
// propagating the reader to a callee, and a justified suppression.
#include "util/serialize.h"
#include "util/status.h"

namespace rsr {

// Pattern 1: check status() after the decode sequence.
Status ReadChecked(ByteReader* r, uint64_t* out) {
  *out = r->GetVarint64();
  return r->status();
}

// Pattern 2: explicit Invalidate() on a validation failure.
uint64_t ReadOrPoison(ByteReader* r) {
  uint64_t v = r->GetVarint64();
  if (v > 1000) {
    r->Invalidate();
    return 0;
  }
  return v;
}

// Pattern 3: the reader is handed to a callee that owns the check.
Status ReadDelegating(ByteReader* r, uint64_t* out) {
  uint64_t ignored = r->GetU64();
  (void)ignored;
  return ReadChecked(r, out);
}

// Pattern 4: justified suppression on the first getter line.
uint64_t ReadSuppressed(ByteReader* r) {
  // RSR_LINT_OK(reader-check): fixture; callers check status() themselves.
  return r->GetU64();
}

}  // namespace rsr
