// Known-good fixture for the bounds-check rule: every wire-parsed count is
// validated (comparison + Invalidate, or a std::min clamp) before it sizes
// an allocation or a loop.
#include <algorithm>
#include <vector>

#include "util/serialize.h"

namespace rsr {

constexpr uint64_t kMaxKeys = 1u << 20;

// Pattern 1: explicit range check that poisons the reader on failure.
std::vector<uint64_t> ReadKeysBounded(ByteReader* r) {
  uint64_t count = r->GetVarint64();
  if (r->failed() || count > kMaxKeys) {
    r->Invalidate();
    return {};
  }
  std::vector<uint64_t> keys;
  keys.resize(count);
  for (auto& k : keys) k = r->GetU64();
  return keys;
}

// Pattern 2: clamp to a caller-supplied cap before the loop.
std::vector<uint64_t> ReadKeysClamped(ByteReader* r, uint64_t cap) {
  uint64_t n = r->GetU32();
  n = std::min<uint64_t>(n, cap);
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < n; ++i) out.push_back(r->GetU64());
  if (r->failed()) out.clear();
  return out;
}

}  // namespace rsr
