// Known-bad fixture for the bounded-peel rule: a peel loop with no
// extraction cap — a corrupted table oscillating between states spins
// forever. lint_invariants_test.py asserts one bounded-peel finding.
#include <cstddef>
#include <vector>

namespace rsr {

struct Cell {
  int count = 0;
};

// BAD: nothing in the condition or body references a cap identifier.
size_t PeelForever(std::vector<Cell>* cells) {
  size_t extracted = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& c : *cells) {
      if (c.count == 1) {
        c.count = 0;
        ++extracted;
        progress = true;
      }
    }
  }
  return extracted;
}

}  // namespace rsr
