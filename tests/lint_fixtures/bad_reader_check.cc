// Known-bad fixture for the reader-check rule: getters are called but the
// sticky error state is never consulted and the reader is never passed on.
// lint_invariants_test.py asserts exactly one reader-check finding here.
#include "util/serialize.h"

namespace rsr {

struct Header {
  uint32_t mode;
  uint64_t cells;
};

Header ReadHeader(ByteReader* r) {
  Header h;
  h.mode = r->GetU32();
  h.cells = r->GetVarint64();
  return h;  // BAD: garbage on a poisoned reader, caller can't tell.
}

}  // namespace rsr
