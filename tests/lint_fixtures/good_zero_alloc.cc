// Known-good fixture for the zero-alloc rule: growth only on pooled
// storage — members (trailing underscore), `static thread_local` locals
// (including a multi-declarator list, the riblt.cc WriteTo idiom), and a
// scratch parameter's fields.
#include <cstdint>
#include <vector>

namespace rsr {

struct Scratch {
  std::vector<uint64_t> keys;
};

class Table {
 public:
  // RSR_ZERO_ALLOC: steady-state reuse of pooled buffers only.
  void Serve(Scratch* scratch, uint64_t key) {
    buf_.push_back(key);            // member pool
    scratch->keys.push_back(key);   // caller-owned scratch pool
    static thread_local std::vector<uint64_t> lo, hi;
    lo.assign(4, 0);                // multi-declarator thread_local pool
    hi.assign(4, 0);
  }

 private:
  std::vector<uint64_t> buf_;
};

}  // namespace rsr
