// Known-good fixture for the bounded-peel rule: loops reference an
// extraction cap, or carry an RSR_BOUNDED annotation naming why they
// terminate.
#include <cstddef>
#include <vector>

namespace rsr {

struct Cell {
  int count = 0;
};

// Pattern 1: explicit extraction cap in the loop condition (the
// Iblt::PeelInto idiom: max_entries = 2 * total + 16).
size_t PeelCapped(std::vector<Cell>* cells, size_t total) {
  const size_t max_entries = 2 * total + 16;
  size_t extracted = 0;
  bool progress = true;
  while (progress && extracted < max_entries) {
    progress = false;
    for (auto& c : *cells) {
      if (c.count == 1) {
        c.count = 0;
        ++extracted;
        progress = true;
      }
    }
  }
  return extracted;
}

// Pattern 2: annotated termination argument for a structurally bounded loop.
size_t DecodeDrain(std::vector<Cell>* cells) {
  size_t extracted = 0;
  size_t i = 0;
  // RSR_BOUNDED: i only increases and the vector does not grow.
  while (i < cells->size()) {
    if ((*cells)[i].count == 1) ++extracted;
    ++i;
  }
  return extracted;
}

}  // namespace rsr
