// Known-bad fixture for suppression hygiene: a bare marker and an
// unknown-rule marker are both findings — a suppression must name a real
// rule and carry a justification. lint_invariants_test.py asserts two
// suppression findings (and that neither marker suppresses anything).
#include <cstdint>

namespace rsr {

// RSR_LINT_OK
uint64_t BareMarker() { return 0; }

// RSR_LINT_OK(made-up-rule): this rule does not exist.
uint64_t UnknownRule() { return 1; }

}  // namespace rsr
