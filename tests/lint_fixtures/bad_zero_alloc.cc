// Known-bad fixture for the zero-alloc rule: an RSR_ZERO_ALLOC-annotated
// function that allocates directly, constructs a local container, and grows
// a non-pooled container. lint_invariants_test.py asserts three findings.
#include <cstdint>
#include <memory>
#include <vector>

namespace rsr {

struct Sink {
  std::vector<uint64_t> items;
};

// RSR_ZERO_ALLOC: pinned by an alloc_counter test (fixture).
void HotPathLeaks(Sink* out, uint64_t key) {
  auto owned = std::make_unique<uint64_t>(key);  // BAD: direct allocation
  std::vector<uint64_t> local;                   // BAD: local container
  out->items.push_back(*owned);                  // BAD: non-pooled growth
}

}  // namespace rsr
