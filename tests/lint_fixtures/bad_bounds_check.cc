// Known-bad fixture for the bounds-check rule: wire-parsed counts drive an
// allocation and a loop before any validation. lint_invariants_test.py
// asserts one finding per Read function below.
#include <vector>

#include "util/serialize.h"

namespace rsr {

// BAD: `count` sizes the vector with no bound — a corrupt stream picks the
// allocation size (the PR 9 42 GB hang class).
std::vector<uint64_t> ReadKeysUnbounded(ByteReader* r) {
  uint64_t count = r->GetVarint64();
  std::vector<uint64_t> keys;
  keys.resize(count);
  for (auto& k : keys) k = r->GetU64();
  if (r->failed()) keys.clear();
  return keys;
}

// BAD: `n` bounds the loop with no validation; each iteration allocates.
std::vector<std::vector<uint64_t>> ReadNested(ByteReader* r) {
  uint64_t n = r->GetU32();
  std::vector<std::vector<uint64_t>> out;
  for (uint64_t i = 0; i < n; ++i) {
    out.emplace_back();
  }
  if (r->failed()) out.clear();
  return out;
}

}  // namespace rsr
