// Sharded-vs-sequential byte-identity for the intra-table RIBLT/IBLT build.
//
// Riblt::UpdateManySharded and Iblt::UpdateManySharded are pure
// re-schedulings of the sequential UpdateMany: every cell sees its updates
// in global key order, so the cell slabs — and therefore the WriteTo wire
// bytes — must match exactly for every (num_shards, num_threads)
// combination, on cold and warm (pooled-scratch) calls alike. The protocol
// tests pin the stronger end-to-end form: full EMD and Gap transcripts are
// independent of the sketch_shards knob.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/emd_protocol.h"
#include "core/gap_protocol.h"
#include "sketch/iblt.h"
#include "sketch/riblt.h"
#include "util/random.h"
#include "util/serialize.h"
#include "workload/generators.h"

namespace rsr {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 7, 64};
constexpr size_t kThreadCounts[] = {1, 2, 4};

std::vector<uint8_t> Bytes(const Riblt& table) {
  ByteWriter w;
  table.WriteTo(&w);
  return std::vector<uint8_t>(w.buffer().begin(), w.buffer().end());
}

std::vector<uint8_t> Bytes(const Iblt& table) {
  ByteWriter w;
  table.WriteTo(&w);
  return std::vector<uint8_t>(w.buffer().begin(), w.buffer().end());
}

RibltParams MakeRibltParams(size_t cells, size_t dim) {
  RibltParams params;
  params.num_cells = cells;
  params.dim = dim;
  params.delta = 1023;
  params.seed = 99;
  return params;
}

TEST(RibltShardedTest, InsertDeleteMixMatchesSequentialBytes) {
  const size_t dim = 5;
  Rng rng(1);
  const size_t n = 513;  // not a multiple of any shard count
  std::vector<uint64_t> ins_keys(n), del_keys(n / 2);
  for (auto& k : ins_keys) k = rng.Next();
  for (auto& k : del_keys) k = rng.Next();
  PointStore ins_values = GenerateUniformStore(ins_keys.size(), dim, 1023, &rng);
  PointStore del_values = GenerateUniformStore(del_keys.size(), dim, 1023, &rng);

  Riblt reference(MakeRibltParams(384, dim));
  reference.InsertMany(ins_keys, ins_values);
  reference.DeleteMany(del_keys, del_values);
  const std::vector<uint8_t> want = Bytes(reference);

  for (size_t shards : kShardCounts) {
    for (size_t threads : kThreadCounts) {
      Riblt table(MakeRibltParams(384, dim));
      table.InsertManySharded(ins_keys, ins_values, shards, threads);
      table.DeleteManySharded(del_keys, del_values, shards, threads);
      EXPECT_EQ(Bytes(table), want) << "shards " << shards << " threads "
                                    << threads;
    }
  }
}

TEST(RibltShardedTest, WarmReuseAndShardCountSwitchesStayIdentical) {
  // One instance driven through several batches with different shard
  // counts: pooled scratch from a previous call must never leak into the
  // next result.
  const size_t dim = 3;
  Rng rng(2);
  Riblt reference(MakeRibltParams(144, dim));
  Riblt table(MakeRibltParams(144, dim));
  for (size_t round = 0; round < 4; ++round) {
    const size_t n = 100 + 37 * round;
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.Next();
    PointStore values = GenerateUniformStore(n, dim, 1023, &rng);
    reference.InsertMany(keys, values);
    table.InsertManySharded(keys, values, kShardCounts[round % 4],
                            kThreadCounts[round % 3]);
    ASSERT_EQ(Bytes(table), Bytes(reference)) << "round " << round;
  }
}

TEST(RibltShardedTest, ShardCountsBeyondCellsClampSafely) {
  const size_t dim = 2;
  Rng rng(3);
  std::vector<uint64_t> keys(41);
  for (auto& k : keys) k = rng.Next();
  PointStore values = GenerateUniformStore(keys.size(), dim, 1023, &rng);
  Riblt reference(MakeRibltParams(9, dim));
  reference.InsertMany(keys, values);
  Riblt table(MakeRibltParams(9, dim));
  table.InsertManySharded(keys, values, /*num_shards=*/1024,
                          /*num_threads=*/4);
  EXPECT_EQ(Bytes(table), Bytes(reference));
}

TEST(IbltShardedTest, InsertDeleteMixMatchesSequentialBytes) {
  IbltParams params;
  params.num_cells = 257;
  params.seed = 17;
  Rng rng(4);
  std::vector<uint64_t> ins_keys(300), del_keys(111);
  for (auto& k : ins_keys) k = rng.Next();
  for (auto& k : del_keys) k = rng.Next();

  Iblt reference(params);
  reference.InsertMany(ins_keys);
  reference.DeleteMany(del_keys);
  const std::vector<uint8_t> want = Bytes(reference);

  for (size_t shards : kShardCounts) {
    for (size_t threads : kThreadCounts) {
      Iblt table(params);
      table.InsertManySharded(ins_keys, shards, threads);
      table.DeleteManySharded(del_keys, shards, threads);
      EXPECT_EQ(Bytes(table), want) << "shards " << shards << " threads "
                                    << threads;
    }
  }
}

TEST(IbltShardedTest, ShardedTableDecodesTheSameDiff) {
  IbltParams params;
  params.num_cells = 128;
  params.seed = 23;
  Rng rng(5);
  std::vector<uint64_t> shared(64), only_a(5), only_b(3);
  for (auto& k : shared) k = rng.Next();
  for (auto& k : only_a) k = rng.Next();
  for (auto& k : only_b) k = rng.Next();
  std::vector<uint64_t> a_keys = shared, b_keys = shared;
  a_keys.insert(a_keys.end(), only_a.begin(), only_a.end());
  b_keys.insert(b_keys.end(), only_b.begin(), only_b.end());

  Iblt a(params), b(params);
  a.InsertManySharded(a_keys, /*num_shards=*/7, /*num_threads=*/2);
  b.InsertManySharded(b_keys, /*num_shards=*/64, /*num_threads=*/1);
  auto diff = a.DecodeDiff(b);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->complete);
  EXPECT_EQ(diff->entries.size(), only_a.size() + only_b.size());
}

void ExpectSameComm(const CommStats& a, const CommStats& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].label, b.messages[i].label);
    EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
  }
}

TEST(RibltShardedTest, EmdTranscriptIdenticalForEveryShardCount) {
  const size_t dim = 3;
  const Coord delta = 63;
  Rng rng(42);
  PointSet alice_set = GenerateUniform(48, dim, delta, &rng);
  PointSet bob_set = alice_set;
  bob_set[0] = GenerateUniform(1, dim, delta, &rng)[0];
  PointStore alice = PointStore::FromPointSet(dim, alice_set);
  PointStore bob = PointStore::FromPointSet(dim, bob_set);
  EmdProtocolParams params;
  params.metric = MetricKind::kL2;
  params.dim = dim;
  params.delta = delta;
  params.k = 2;
  params.d1 = 1;
  params.d2 = 16;
  params.seed = 1234;
  auto baseline = RunEmdProtocol(alice, bob, params);
  ASSERT_TRUE(baseline.ok());
  for (size_t shards : {size_t{2}, size_t{7}, size_t{64}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      params.sketch_shards = shards;
      params.num_threads = threads;
      auto report = RunEmdProtocol(alice, bob, params);
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(report->failure, baseline->failure);
      EXPECT_EQ(report->decoded_level, baseline->decoded_level);
      EXPECT_EQ(report->x_a, baseline->x_a);
      EXPECT_EQ(report->x_b, baseline->x_b);
      ExpectSameComm(report->comm, baseline->comm);
    }
  }
}

TEST(RibltShardedTest, GapTranscriptIdenticalForEveryShardCount) {
  Rng rng(43);
  PointStore alice = GenerateUniformStore(32, 128, 1, &rng);
  PointStore bob = GenerateUniformStore(32, 128, 1, &rng);
  GapProtocolParams params;
  params.metric = MetricKind::kHamming;
  params.dim = 128;
  params.delta = 1;
  params.r1 = 2;
  params.r2 = 32;
  params.k = 2;
  params.seed = 77;
  auto baseline = RunGapProtocol(alice, bob, params);
  ASSERT_TRUE(baseline.ok());
  for (size_t shards : {size_t{2}, size_t{7}, size_t{64}}) {
    params.reconciler.sketch_shards = shards;
    params.reconciler.num_threads = 2;
    auto report = RunGapProtocol(alice, bob, params);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->transmitted, baseline->transmitted);
    EXPECT_EQ(report->s_b_prime, baseline->s_b_prime);
    ExpectSameComm(report->comm, baseline->comm);
  }
}

}  // namespace
}  // namespace rsr
