// Tests for sketch/strata.h: the Eppstein et al. difference-size estimator.
#include <cmath>

#include <gtest/gtest.h>

#include "sketch/strata.h"
#include "util/random.h"

namespace rsr {
namespace {

StrataParams MakeParams(uint64_t seed = 5) {
  StrataParams params;
  params.seed = seed;
  return params;
}

TEST(StrataTest, IdenticalSetsEstimateZero) {
  StrataEstimator a(MakeParams()), b(MakeParams());
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    uint64_t k = rng.Next();
    a.Insert(k);
    b.Insert(k);
  }
  auto estimate = a.EstimateDiff(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0u);
}

TEST(StrataTest, SmallDifferenceIsExact) {
  // Differences small enough to decode in every stratum are counted exactly.
  StrataEstimator a(MakeParams()), b(MakeParams());
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    uint64_t k = rng.Next();
    a.Insert(k);
    b.Insert(k);
  }
  for (int i = 0; i < 12; ++i) a.Insert(rng.Next());
  for (int i = 0; i < 8; ++i) b.Insert(rng.Next());
  auto estimate = a.EstimateDiff(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 20u);
}

TEST(StrataTest, LargeDifferenceWithinFactorTwo) {
  const size_t kDiff = 4000;
  StrataEstimator a(MakeParams(9)), b(MakeParams(9));
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    uint64_t k = rng.Next();
    a.Insert(k);
    b.Insert(k);
  }
  for (size_t i = 0; i < kDiff; ++i) a.Insert(rng.Next());
  auto estimate = a.EstimateDiff(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, kDiff / 2);
  EXPECT_LE(*estimate, kDiff * 2);
}

TEST(StrataTest, EstimateScalesAcrossMagnitudes) {
  // Order-of-magnitude tracking over a sweep.
  for (size_t diff : {100u, 1000u, 10000u}) {
    StrataEstimator a(MakeParams(11)), b(MakeParams(11));
    Rng rng(100 + diff);
    for (size_t i = 0; i < diff; ++i) a.Insert(rng.Next());
    auto estimate = a.EstimateDiff(b);
    ASSERT_TRUE(estimate.ok());
    EXPECT_GE(*estimate, diff / 3) << diff;
    EXPECT_LE(*estimate, diff * 3) << diff;
  }
}

TEST(StrataTest, ParameterMismatchRejected) {
  StrataEstimator a(MakeParams(1)), b(MakeParams(2));
  EXPECT_FALSE(a.EstimateDiff(b).ok());
}

TEST(StrataTest, NumHashesMismatchRejected) {
  // num_hashes changes the peeling hypergraph: subtracting such IBLTs is
  // garbage, so the guard must reject it (it used to compare only
  // num_strata/cells/seed and silently "succeed").
  StrataParams p1 = MakeParams(3);
  StrataParams p2 = MakeParams(3);
  p2.num_hashes = p1.num_hashes + 1;
  StrataEstimator a(p1), b(p2);
  Rng rng(14);
  for (int i = 0; i < 50; ++i) {
    uint64_t k = rng.Next();
    a.Insert(k);
    b.Insert(k);
  }
  auto estimate = a.EstimateDiff(b);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrataTest, ChecksumBytesMismatchRejected) {
  StrataParams p1 = MakeParams(3);
  StrataParams p2 = MakeParams(3);
  p2.checksum_bytes = 8;  // p1 uses the default 4
  StrataEstimator a(p1), b(p2);
  auto estimate = a.EstimateDiff(b);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrataTest, UndecodableFirstStratumNeverEstimatesZero) {
  // Single stratum holding a difference far beyond its cell capacity: the
  // stratum cannot decode and no deeper stratum exists, so the legacy
  // extrapolation returned 0 << 1 == 0 — "no difference" for a difference of
  // a thousand keys, under-provisioning every adaptive consumer. The fix
  // floors the estimate at 1 << (i + 1).
  StrataParams params = MakeParams(15);
  params.num_strata = 1;
  StrataEstimator a(params), b(params);
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) a.Insert(rng.Next());
  auto estimate = a.EstimateDiff(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, 2u);  // the 1 << (i+1) floor at i = 0
}

TEST(StrataTest, ZeroDeepEntriesExtrapolationUsesFloor) {
  // Multi-strata variant: a difference large enough that even the deepest
  // stratum overloads (each stratum samples ~diff/2^{i+1} >> cells). The
  // walk fails at the deepest stratum with zero accumulated entries and
  // must return the floor for that depth, not zero.
  StrataParams params = MakeParams(17);
  params.num_strata = 4;
  params.cells_per_stratum = 16;
  StrataEstimator a(params), b(params);
  Rng rng(18);
  for (int i = 0; i < 20000; ++i) a.Insert(rng.Next());
  auto estimate = a.EstimateDiff(b);
  ASSERT_TRUE(estimate.ok());
  // First failure at i = num_strata - 1 = 3 yields at least 1 << 4.
  EXPECT_GE(*estimate, 16u);
}

TEST(StrataTest, ExtrapolationSaturatesInsteadOfWrapping) {
  // With num_strata = 63 the extrapolation shift reaches 63 bits;
  // exact_from_deeper << 63 used to wrap (e.g. 2 << 63 == 0), collapsing an
  // astronomically large difference estimate to a tiny one.
  using strata_internal::ExtrapolateEstimate;
  const uint64_t kMax = ~uint64_t{0};
  EXPECT_EQ(ExtrapolateEstimate(2, 62), kMax);    // 2 << 63 wrapped to 0
  EXPECT_EQ(ExtrapolateEstimate(3, 62), kMax);    // 3 << 63 wrapped to 1<<63
  EXPECT_EQ(ExtrapolateEstimate(kMax, 0), kMax);  // any shift of UINT64_MAX
  EXPECT_EQ(ExtrapolateEstimate(uint64_t{1} << 40, 30), kMax);
  // Non-saturating cases keep the exact scaling and the nonzero floor.
  EXPECT_EQ(ExtrapolateEstimate(1, 62), uint64_t{1} << 63);
  EXPECT_EQ(ExtrapolateEstimate(0, 62), uint64_t{1} << 63);  // floor
  EXPECT_EQ(ExtrapolateEstimate(3, 3), 48u);
  EXPECT_EQ(ExtrapolateEstimate(0, 0), 2u);
}

TEST(StrataTest, DeepStratumEstimatorStaysSane) {
  // End-to-end with the maximum stratum depth: the estimate must neither
  // error nor wrap to a tiny value for a large difference.
  StrataParams params = MakeParams(23);
  params.num_strata = 63;
  params.cells_per_stratum = 16;
  StrataEstimator a(params), b(params);
  Rng rng(24);
  for (int i = 0; i < 5000; ++i) a.Insert(rng.Next());
  auto estimate = a.EstimateDiff(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, 5000u / 3);
}

TEST(StrataTest, SerializationRoundTrip) {
  StrataParams params = MakeParams(21);
  StrataEstimator a(params);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) a.Insert(rng.Next());
  ByteWriter w;
  a.WriteTo(&w);
  ByteReader r(w.buffer());
  auto restored = StrataEstimator::ReadFrom(&r, params);
  ASSERT_TRUE(restored.ok());
  StrataEstimator empty(params);
  auto original_est = a.EstimateDiff(empty);
  auto restored_est = restored->EstimateDiff(empty);
  ASSERT_TRUE(original_est.ok());
  ASSERT_TRUE(restored_est.ok());
  EXPECT_EQ(*original_est, *restored_est);
}

}  // namespace
}  // namespace rsr
