// Cross-module integration tests: full sensor-synchronization scenarios
// driving workload generation, both protocol families, and the evaluation
// oracles together; plus end-to-end determinism and accounting invariants.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/emd_multiscale.h"
#include "core/emd_protocol.h"
#include "core/gap_protocol.h"
#include "core/naive.h"
#include "core/quadtree_baseline.h"
#include "emd/emd.h"
#include "workload/generators.h"

namespace rsr {
namespace {

double WorstCaseGap(const PointStore& alice, const PointSet& s_b_prime,
                    const Metric& metric) {
  double worst = 0;
  for (size_t i = 0; i < alice.size(); ++i) {
    double best = 1e300;
    for (const Point& b : s_b_prime) {
      best = std::min(best, metric.Distance(alice.row(i), b.coords().data(),
                                            alice.dim()));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

TEST(IntegrationTest, SensorScenarioEmdPipeline) {
  // The paper's motivating scenario: two sensors observe the same objects
  // with noise; Alice additionally sees k new objects. After one round of
  // Algorithm 1, Bob's set should be close to Alice's in EMD.
  NoisyPairConfig config;
  config.metric = MetricKind::kL2;
  config.dim = 3;
  config.delta = 511;
  config.n = 48;
  config.outliers = 2;
  config.noise = 2.0;
  config.outlier_dist = 120;
  config.seed = 424242;
  auto workload = GenerateNoisyPairStore(config);
  ASSERT_TRUE(workload.ok());

  Metric metric(MetricKind::kL2);
  double before = EmdExact(workload->alice, workload->bob, metric);
  double emdk = EmdK(workload->alice, workload->bob, metric, 2);

  MultiscaleEmdParams params;
  params.base.metric = MetricKind::kL2;
  params.base.dim = 3;
  params.base.delta = 511;
  params.base.k = 2;
  params.base.seed = 99;
  params.interval_ratio = 4.0;
  auto report =
      RunMultiscaleEmdProtocol(workload->alice, workload->bob, params);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->failure);
  double after = EmdExact(workload->alice, report->s_b_prime, metric);
  EXPECT_LT(after, before);
  // O(log n) approximation with generous constant: log2(48) ~ 5.6.
  EXPECT_LT(after, std::max(emdk, 1.0) * 60.0);
}

TEST(IntegrationTest, EmdProtocolBeatsNaiveCommunicationForSmallK) {
  NoisyPairConfig config;
  config.metric = MetricKind::kL1;
  config.dim = 8;
  config.delta = 4095;
  config.n = 384;
  config.outliers = 1;
  config.noise = 0;
  config.outlier_dist = 500;
  config.seed = 31337;
  auto workload = GenerateNoisyPairStore(config);
  ASSERT_TRUE(workload.ok());

  EmdProtocolParams params;
  params.metric = MetricKind::kL1;
  params.dim = 8;
  params.delta = 4095;
  params.k = 1;
  params.d1 = 1000;
  params.d2 = 4000;
  params.seed = 5;
  auto report = RunEmdProtocol(workload->alice, workload->bob, params);
  ASSERT_TRUE(report.ok());

  NaiveReport naive =
      RunNaiveFullTransfer(workload->alice, workload->bob, false);
  EXPECT_LT(report->comm.total_bytes(), naive.comm.total_bytes());
}

TEST(IntegrationTest, GapAndEmdModelsComposable) {
  // Run the Gap protocol first (Bob gains Alice's far points), then verify
  // the gap property; the two models answer different questions about the
  // same workload.
  NoisyPairConfig config;
  config.metric = MetricKind::kL1;
  config.dim = 4;
  config.delta = 1023;
  config.n = 40;
  config.outliers = 2;
  config.noise = 2;
  config.outlier_dist = 250;
  config.seed = 777;
  auto workload = GenerateNoisyPairStore(config);
  ASSERT_TRUE(workload.ok());

  GapProtocolParams gap;
  gap.metric = MetricKind::kL1;
  gap.dim = 4;
  gap.delta = 1023;
  gap.r1 = 4;
  gap.r2 = 150;
  gap.k = 2;
  gap.seed = 888;
  auto report = RunGapProtocol(workload->alice, workload->bob, gap);
  ASSERT_TRUE(report.ok());
  Metric metric(MetricKind::kL1);
  EXPECT_LE(WorstCaseGap(workload->alice, report->s_b_prime, metric), 150.0);
  EXPECT_LE(WorstCaseGap(workload->bob, report->s_b_prime, metric), 0.0);
}

TEST(IntegrationTest, OursVsQuadtreeOnHighDimensionalData) {
  // The headline claim: O(log n) approximation vs the baseline's O(d).
  // In higher dimension with per-point noise, our repaired EMD should not
  // be worse than the quadtree baseline's (usually much better).
  const size_t dim = 8;
  double ours_total = 0, quadtree_total = 0;
  int both = 0;
  for (int trial = 0; trial < 5; ++trial) {
    NoisyPairConfig config;
    config.metric = MetricKind::kL1;
    config.dim = dim;
    config.delta = 255;
    config.n = 40;
    config.outliers = 1;
    config.noise = 2;
    config.outlier_dist = 300;
    config.seed = static_cast<uint64_t>(8800 + trial);
    auto workload = GenerateNoisyPairStore(config);
    ASSERT_TRUE(workload.ok());
    Metric metric(MetricKind::kL1);

    MultiscaleEmdParams ours;
    ours.base.metric = MetricKind::kL1;
    ours.base.dim = dim;
    ours.base.delta = 255;
    ours.base.k = 1;
    ours.base.seed = static_cast<uint64_t>(42 + trial);
    ours.interval_ratio = 4.0;
    auto ours_report =
        RunMultiscaleEmdProtocol(workload->alice, workload->bob, ours);
    ASSERT_TRUE(ours_report.ok());

    QuadtreeEmdParams quadtree;
    quadtree.dim = dim;
    quadtree.delta = 255;
    quadtree.k = 1;
    quadtree.seed = static_cast<uint64_t>(43 + trial);
    auto quadtree_report =
        RunQuadtreeEmdProtocol(workload->alice, workload->bob, quadtree);
    ASSERT_TRUE(quadtree_report.ok());

    if (ours_report->failure || quadtree_report->failure) continue;
    ++both;
    ours_total +=
        EmdExact(workload->alice, ours_report->s_b_prime, metric);
    quadtree_total +=
        EmdExact(workload->alice, quadtree_report->s_b_prime, metric);
  }
  ASSERT_GT(both, 2);
  EXPECT_LE(ours_total, quadtree_total * 1.25);
}

TEST(IntegrationTest, TranscriptBytesArePositiveAndAdditive) {
  Rng rng(1);
  PointStore pts = GenerateUniformStore(24, 2, 63, &rng);
  EmdProtocolParams params;
  params.metric = MetricKind::kL1;
  params.dim = 2;
  params.delta = 63;
  params.k = 2;
  params.d1 = 4;
  params.d2 = 64;
  params.seed = 3;
  auto report = RunEmdProtocol(pts, pts, params);
  ASSERT_TRUE(report.ok());
  size_t sum = 0;
  for (const auto& m : report->comm.messages) {
    EXPECT_GT(m.bytes, 0u);
    EXPECT_FALSE(m.label.empty());
    sum += m.bytes;
  }
  EXPECT_EQ(sum, report->comm.total_bytes());
  EXPECT_EQ(report->comm.total_bits(), 8 * sum);
}

TEST(IntegrationTest, StoreWorkloadDrivesWholePipelineIdentically) {
  // End-to-end representation identity: the PointSet generators draw the
  // same points as the store generators, and a store converted from that
  // PointSet output must drive the multiscale EMD and Gap protocols
  // (threads 1 and 8) byte-identically to the natively generated arena.
  // However the arena was built, it must be invisible on the wire.
  NoisyPairConfig config;
  config.metric = MetricKind::kL2;
  config.dim = 3;
  config.delta = 511;
  config.n = 48;
  config.outliers = 2;
  config.noise = 2.0;
  config.outlier_dist = 120;
  config.seed = 424242;
  auto stores = GenerateNoisyPairStore(config);
  auto sets = GenerateNoisyPair(config);
  ASSERT_TRUE(stores.ok());
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(stores->alice.ToPointSet(), sets->alice);
  ASSERT_EQ(stores->bob.ToPointSet(), sets->bob);
  PointStore alice_converted = PointStore::FromPointSet(3, sets->alice);
  PointStore bob_converted = PointStore::FromPointSet(3, sets->bob);

  for (size_t threads : {size_t{1}, size_t{8}}) {
    MultiscaleEmdParams emd;
    emd.base.metric = MetricKind::kL2;
    emd.base.dim = 3;
    emd.base.delta = 511;
    emd.base.k = 2;
    emd.base.seed = 99;
    emd.base.num_threads = threads;
    emd.interval_ratio = 4.0;
    auto emd_stores = RunMultiscaleEmdProtocol(stores->alice, stores->bob,
                                               emd);
    auto emd_sets =
        RunMultiscaleEmdProtocol(alice_converted, bob_converted, emd);
    ASSERT_TRUE(emd_stores.ok());
    ASSERT_TRUE(emd_sets.ok());
    EXPECT_EQ(emd_stores->failure, emd_sets->failure);
    EXPECT_EQ(emd_stores->chosen_interval, emd_sets->chosen_interval);
    EXPECT_EQ(emd_stores->s_b_prime, emd_sets->s_b_prime);
    EXPECT_EQ(emd_stores->comm.total_bytes(), emd_sets->comm.total_bytes());

    GapProtocolParams gap;
    gap.metric = MetricKind::kL2;
    gap.dim = 3;
    gap.delta = 511;
    gap.r1 = 4;
    gap.r2 = 100;
    gap.k = 2;
    gap.seed = 888;
    gap.num_threads = threads;
    auto gap_stores = RunGapProtocol(stores->alice, stores->bob, gap);
    auto gap_sets = RunGapProtocol(alice_converted, bob_converted, gap);
    ASSERT_TRUE(gap_stores.ok());
    ASSERT_TRUE(gap_sets.ok());
    EXPECT_EQ(gap_stores->s_b_prime, gap_sets->s_b_prime);
    EXPECT_EQ(gap_stores->transmitted, gap_sets->transmitted);
    EXPECT_EQ(gap_stores->comm.total_bytes(), gap_sets->comm.total_bytes());
  }

  // The evaluation oracles read either representation identically.
  Metric metric(MetricKind::kL2);
  EXPECT_EQ(EmdK(stores->alice, stores->bob, metric, 2),
            EmdK(sets->alice, sets->bob, metric, 2));
}

TEST(IntegrationTest, FullyDeterministicAcrossModules) {
  NoisyPairConfig config;
  config.metric = MetricKind::kHamming;
  config.dim = 96;
  config.delta = 1;
  config.n = 24;
  config.outliers = 1;
  config.noise = 1;
  config.outlier_dist = 30;
  config.seed = 1234;
  auto w1 = GenerateNoisyPairStore(config);
  auto w2 = GenerateNoisyPairStore(config);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());

  GapProtocolParams gap;
  gap.metric = MetricKind::kHamming;
  gap.dim = 96;
  gap.delta = 1;
  gap.r1 = 2;
  gap.r2 = 24;
  gap.k = 1;
  gap.seed = 5678;
  auto r1 = RunGapProtocol(w1->alice, w1->bob, gap);
  auto r2 = RunGapProtocol(w2->alice, w2->bob, gap);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->s_b_prime, r2->s_b_prime);
  EXPECT_EQ(r1->comm.total_bytes(), r2->comm.total_bytes());
}

}  // namespace
}  // namespace rsr
