// End-to-end tests for the EMD protocol (Algorithm 1 / Theorem 3.4) and the
// multiscale runner (Corollaries 3.5/3.6).
#include <cmath>

#include <gtest/gtest.h>

#include "core/emd_multiscale.h"
#include "core/emd_protocol.h"
#include "emd/emd.h"
#include "workload/generators.h"

namespace rsr {
namespace {

EmdProtocolParams BaseParams(MetricKind metric, size_t dim, Coord delta,
                             size_t k, uint64_t seed) {
  EmdProtocolParams params;
  params.metric = metric;
  params.dim = dim;
  params.delta = delta;
  params.k = k;
  params.seed = seed;
  return params;
}

TEST(EmdParamsTest, DeriveValidatesInputs) {
  EmdProtocolParams params = BaseParams(MetricKind::kL1, 0, 10, 1, 1);
  EXPECT_FALSE(DeriveEmdParameters(params, 10).ok());
  params = BaseParams(MetricKind::kL1, 4, 10, 1, 1);
  params.num_hashes = 2;
  EXPECT_FALSE(DeriveEmdParameters(params, 10).ok());
  params.num_hashes = 3;
  params.d1 = 100;
  params.d2 = 10;
  EXPECT_FALSE(DeriveEmdParameters(params, 10).ok());
}

TEST(EmdParamsTest, DerivedQuantitiesFollowTheorem34) {
  EmdProtocolParams params = BaseParams(MetricKind::kL1, 4, 100, 8, 1);
  params.d1 = 10;
  params.d2 = 40;
  auto derived = DeriveEmdParameters(params, 64);
  ASSERT_TRUE(derived.ok());
  // p >= e^{-k/(24 D2)}.
  EXPECT_GE(derived->p, std::exp(-8.0 / (24.0 * 40.0)) - 1e-12);
  // t = ceil(log2(D2/D1)) + 1 = 3.
  EXPECT_EQ(derived->levels, 3u);
  // m = 4 q^2 k = 4*9*8.
  EXPECT_EQ(derived->cells, 4u * 9u * 8u);
  // Prefix lengths double per level and cap at s.
  size_t prev = 0;
  for (size_t level = 1; level <= derived->levels; ++level) {
    size_t len = LevelPrefixLength(*derived, level);
    EXPECT_GE(len, prev);
    EXPECT_LE(len, derived->s);
    prev = len;
  }
  EXPECT_EQ(LevelPrefixLength(*derived, derived->levels), derived->s);
}

TEST(EmdProtocolTest, RejectsMismatchedSizes) {
  Rng rng(1);
  PointStore a = GenerateUniformStore(4, 2, 10, &rng);
  PointStore b = GenerateUniformStore(5, 2, 10, &rng);
  auto report =
      RunEmdProtocol(a, b, BaseParams(MetricKind::kL1, 2, 10, 1, 1));
  EXPECT_FALSE(report.ok());
}

TEST(EmdProtocolTest, IdenticalSetsReconcileToThemselves) {
  Rng rng(2);
  PointStore pts = GenerateUniformStore(32, 3, 63, &rng);
  EmdProtocolParams params = BaseParams(MetricKind::kL1, 3, 63, 2, 7);
  params.d1 = 1;
  params.d2 = 8;
  auto report = RunEmdProtocol(pts, pts, params);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->failure);
  EXPECT_EQ(report->s_b_prime.size(), pts.size());
  EXPECT_EQ(EmdExact(pts, report->s_b_prime, Metric(MetricKind::kL1)), 0.0);
}

TEST(EmdProtocolTest, SingleRoundAndCommMatchesFormulaShape) {
  Rng rng(3);
  PointStore pts = GenerateUniformStore(64, 4, 127, &rng);
  EmdProtocolParams params = BaseParams(MetricKind::kL1, 4, 127, 4, 9);
  params.d1 = 4;
  params.d2 = 64;
  auto report = RunEmdProtocol(pts, pts, params);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->comm.rounds(), 1);  // one-way protocol
  // Bits should scale like t * cells * d * log(n Delta): sanity-bound it
  // within a generous constant factor window.
  double cells = static_cast<double>(report->derived.cells);
  double t = static_cast<double>(report->derived.levels);
  double per_cell_bits = 4.0 * 64.0;  // d coords, generous per-coord bits
  EXPECT_LT(static_cast<double>(report->comm.total_bits()),
            t * cells * (per_cell_bits + 384.0) * 2.0);
  EXPECT_GT(static_cast<double>(report->comm.total_bits()),
            t * cells * 8.0);
}

TEST(EmdProtocolTest, RecoversOutlierDifferences) {
  // Bob's set = Alice's set except k points replaced by far outliers: the
  // protocol should bring Bob's set within O(log n)*EMD_k of Alice's.
  const size_t n = 48, k = 2;
  int successes = 0;
  const int kTrials = 10;
  double ratio_sum = 0;
  int ratio_count = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    NoisyPairConfig config;
    config.metric = MetricKind::kL1;
    config.dim = 2;
    config.delta = 2047;  // l1 balls of radius 60 need room for rejection
    config.n = n;
    config.outliers = k;
    config.noise = 0;  // exact shared ground truth; only outliers differ
    config.outlier_dist = 60;
    config.seed = static_cast<uint64_t>(1000 + trial);
    auto workload = GenerateNoisyPairStore(config);
    ASSERT_TRUE(workload.ok());

    EmdProtocolParams params =
        BaseParams(MetricKind::kL1, 2, 2047, k, static_cast<uint64_t>(2000 + trial));
    Metric metric(MetricKind::kL1);
    double emdk = EmdK(workload->alice, workload->bob, metric, k);
    params.d1 = 1;
    params.d2 = 2048;
    auto report = RunEmdProtocol(workload->alice, workload->bob, params);
    ASSERT_TRUE(report.ok());
    if (report->failure) continue;
    ++successes;
    double before = EmdExact(workload->alice, workload->bob, metric);
    double after = EmdExact(workload->alice, report->s_b_prime, metric);
    EXPECT_LT(after, before) << "protocol should improve EMD";
    if (emdk > 0) {
      ratio_sum += after / std::max(emdk, 1.0);
      ++ratio_count;
    } else {
      // EMD_k == 0: after should be small relative to before.
      EXPECT_LT(after, before / 2);
    }
  }
  EXPECT_GE(successes, 7);  // paper: failure prob <= 1/8 per run
  if (ratio_count > 0) {
    EXPECT_LT(ratio_sum / ratio_count, 50.0) << "approx ratio out of range";
  }
}

TEST(EmdProtocolTest, FailureReportedWhenD2TooSmall) {
  // Sets differing by far more than D2 allows: every level overloads, and
  // the protocol must report failure honestly rather than emit garbage.
  Rng rng(4);
  PointStore a = GenerateUniformStore(64, 2, 255, &rng);
  PointStore b = GenerateUniformStore(64, 2, 255, &rng);
  EmdProtocolParams params = BaseParams(MetricKind::kL1, 2, 255, 1, 11);
  params.d1 = 1;
  params.d2 = 2;  // absurdly tight
  auto report = RunEmdProtocol(a, b, params);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->failure);
  EXPECT_EQ(report->decoded_level, 0u);
}

TEST(EmdProtocolTest, OutputSizeAlwaysN) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    NoisyPairConfig config;
    config.metric = MetricKind::kL2;
    config.dim = 3;
    config.delta = 127;
    config.n = 40;
    config.outliers = 2;
    config.noise = 1.0;
    config.outlier_dist = 40;
    config.seed = static_cast<uint64_t>(3000 + trial);
    auto workload = GenerateNoisyPairStore(config);
    ASSERT_TRUE(workload.ok());
    EmdProtocolParams params =
        BaseParams(MetricKind::kL2, 3, 127, 2, static_cast<uint64_t>(4000 + trial));
    params.d1 = 8;
    params.d2 = 512;
    auto report = RunEmdProtocol(workload->alice, workload->bob, params);
    ASSERT_TRUE(report.ok());
    if (!report->failure) {
      EXPECT_EQ(report->s_b_prime.size(), workload->alice.size());
      ValidatePointSet(report->s_b_prime, 3, 127);
    }
  }
}

TEST(EmdProtocolTest, DeterministicGivenSeed) {
  Rng rng(6);
  PointStore a = GenerateUniformStore(24, 2, 63, &rng);
  PointStore b = GenerateUniformStore(24, 2, 63, &rng);
  EmdProtocolParams params = BaseParams(MetricKind::kL1, 2, 63, 4, 42);
  params.d1 = 16;
  params.d2 = 256;
  auto r1 = RunEmdProtocol(a, b, params);
  auto r2 = RunEmdProtocol(a, b, params);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->failure, r2->failure);
  EXPECT_EQ(r1->decoded_level, r2->decoded_level);
  EXPECT_EQ(r1->comm.total_bytes(), r2->comm.total_bytes());
  if (!r1->failure) {
    EXPECT_EQ(r1->s_b_prime, r2->s_b_prime);
  }
}

// --------------------------------------------------------- multiscale --

TEST(MultiscaleTest, RejectsBadRatio) {
  Rng rng(7);
  PointStore pts = GenerateUniformStore(8, 2, 15, &rng);
  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 15, 1, 1);
  params.interval_ratio = 1.0;
  EXPECT_FALSE(RunMultiscaleEmdProtocol(pts, pts, params).ok());
}

TEST(MultiscaleTest, NearOneRatioRejectedInsteadOfLooping) {
  // interval_ratio = 1 + 1e-15 passes the legacy `> 1.0` guard but implies
  // ~10^16 intervals; the derived-count validation must reject it instantly.
  Rng rng(10);
  PointStore pts = GenerateUniformStore(8, 2, 255, &rng);
  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 255, 1, 1);
  params.base.d1 = 1.0;
  params.base.d2 = 1e6;
  params.interval_ratio = 1.0 + 1e-15;
  auto report = RunMultiscaleEmdProtocol(pts, pts, params);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(MultiscaleTest, NearOneRatioWithinBoundStillRuns) {
  // A near-1 ratio whose derived interval count fits the bound is legal and
  // must produce exactly that many intervals.
  Rng rng(11);
  PointStore pts = GenerateUniformStore(8, 2, 255, &rng);
  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 255, 1, 3);
  params.base.d1 = 1.0;
  params.base.d2 = 1.01;
  params.interval_ratio = 1.001;  // ceil(log(1.01)/log(1.001)) = 10
  auto report = RunMultiscaleEmdProtocol(pts, pts, params);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->intervals.size(), 10u);
}

TEST(MultiscaleTest, MaxIntervalsOverrideTightensRejection) {
  Rng rng(12);
  PointStore pts = GenerateUniformStore(8, 2, 255, &rng);
  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 255, 1, 5);
  params.base.d1 = 1.0;
  params.base.d2 = 1024.0;
  params.interval_ratio = 2.0;  // 10 intervals
  params.max_intervals = 4;
  EXPECT_FALSE(RunMultiscaleEmdProtocol(pts, pts, params).ok());
}

TEST(MultiscaleTest, CoversWideRangeWithoutPriorBounds) {
  // No prior [D1, D2] knowledge: defaults span up to n * diameter, yet the
  // protocol still reconciles because some interval brackets the true EMD_k.
  NoisyPairConfig config;
  config.metric = MetricKind::kL1;
  config.dim = 2;
  config.delta = 255;
  config.n = 32;
  config.outliers = 1;
  config.noise = 0;
  config.outlier_dist = 50;
  config.seed = 77;
  auto workload = GenerateNoisyPairStore(config);
  ASSERT_TRUE(workload.ok());

  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 255, 1, 13);
  params.interval_ratio = 4.0;
  auto report =
      RunMultiscaleEmdProtocol(workload->alice, workload->bob, params);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->failure);
  Metric metric(MetricKind::kL1);
  double before = EmdExact(workload->alice, workload->bob, metric);
  double after = EmdExact(workload->alice, report->s_b_prime, metric);
  EXPECT_LT(after, before);
}

TEST(MultiscaleTest, ChoosesFinerIntervalForSmallerDifferences) {
  // Identical sets: the very first (finest) interval must decode.
  Rng rng(8);
  PointStore pts = GenerateUniformStore(32, 2, 255, &rng);
  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 255, 2, 21);
  params.interval_ratio = 4.0;
  auto report = RunMultiscaleEmdProtocol(pts, pts, params);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->failure);
  EXPECT_EQ(report->chosen_interval, 0u);
}

TEST(MultiscaleTest, CommIsSumOfIntervalMessages) {
  Rng rng(9);
  PointStore pts = GenerateUniformStore(16, 2, 63, &rng);
  MultiscaleEmdParams params;
  params.base = BaseParams(MetricKind::kL1, 2, 63, 1, 23);
  params.interval_ratio = 2.0;
  auto report = RunMultiscaleEmdProtocol(pts, pts, params);
  ASSERT_TRUE(report.ok());
  size_t sum = 0;
  for (const auto& sub : report->intervals) sum += sub.comm.total_bytes();
  EXPECT_EQ(report->comm.total_bytes(), sum);
  EXPECT_EQ(report->intervals.size(),
            static_cast<size_t>(report->comm.rounds()));
}

}  // namespace
}  // namespace rsr
