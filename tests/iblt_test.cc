// Tests for sketch/iblt.h: insert/delete symmetry, set-difference decoding,
// key-value payloads, subtraction, serialization, load thresholds.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/iblt.h"
#include "util/random.h"

namespace rsr {
namespace {

IbltParams MakeParams(size_t cells, int q = 4, size_t value_size = 0,
                      uint64_t seed = 99) {
  IbltParams params;
  params.num_cells = cells;
  params.num_hashes = q;
  params.value_size = value_size;
  params.seed = seed;
  return params;
}

TEST(IbltTest, EmptyTableDecodesToNothing) {
  Iblt table(MakeParams(64));
  IbltDecodeResult result = table.Decode();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.entries.empty());
}

TEST(IbltTest, InsertThenDeleteCancels) {
  Iblt table(MakeParams(64));
  for (uint64_t k = 0; k < 50; ++k) table.Insert(k * 977 + 13);
  for (uint64_t k = 0; k < 50; ++k) table.Delete(k * 977 + 13);
  IbltDecodeResult result = table.Decode();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.entries.empty());
}

TEST(IbltTest, RecoverInsertedKeys) {
  Iblt table(MakeParams(64));
  std::set<uint64_t> keys;
  Rng rng(1);
  while (keys.size() < 20) keys.insert(rng.Next());
  for (uint64_t k : keys) table.Insert(k);
  IbltDecodeResult result = table.Decode();
  ASSERT_TRUE(result.complete);
  std::set<uint64_t> recovered;
  for (const auto& e : result.entries) {
    EXPECT_EQ(e.count, 1);
    recovered.insert(e.key);
  }
  EXPECT_EQ(recovered, keys);
}

TEST(IbltTest, SetDifferenceSignsAreDirectional) {
  Iblt table(MakeParams(64));
  table.Insert(111);   // only Alice
  table.Insert(222);   // shared
  table.Delete(222);
  table.Delete(333);   // only Bob
  IbltDecodeResult result = table.Decode();
  ASSERT_TRUE(result.complete);
  std::map<uint64_t, int64_t> got;
  for (const auto& e : result.entries) got[e.key] = e.count;
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got[111], 1);
  EXPECT_EQ(got[333], -1);
}

TEST(IbltTest, KeyValuePayloadRoundTrip) {
  Iblt table(MakeParams(64, 4, 3));
  std::vector<uint8_t> v1 = {1, 2, 3};
  std::vector<uint8_t> v2 = {9, 8, 7};
  table.InsertKv(1001, v1);
  table.InsertKv(1002, v2);
  IbltDecodeResult result = table.Decode();
  ASSERT_TRUE(result.complete);
  std::map<uint64_t, std::vector<uint8_t>> got;
  for (const auto& e : result.entries) got[e.key] = e.value;
  EXPECT_EQ(got[1001], v1);
  EXPECT_EQ(got[1002], v2);
}

TEST(IbltTest, OverloadedTableReportsIncomplete) {
  Iblt table(MakeParams(24, 4));
  Rng rng(2);
  for (int i = 0; i < 200; ++i) table.Insert(rng.Next());
  IbltDecodeResult result = table.Decode();
  EXPECT_FALSE(result.complete);
}

TEST(IbltTest, SubtractComputesDifference) {
  IbltParams params = MakeParams(96);
  Iblt alice(params), bob(params);
  Rng rng(3);
  std::vector<uint64_t> shared(40), alice_only(5), bob_only(7);
  for (auto& k : shared) k = rng.Next();
  for (auto& k : alice_only) k = rng.Next();
  for (auto& k : bob_only) k = rng.Next();
  for (uint64_t k : shared) {
    alice.Insert(k);
    bob.Insert(k);
  }
  for (uint64_t k : alice_only) alice.Insert(k);
  for (uint64_t k : bob_only) bob.Insert(k);
  ASSERT_TRUE(alice.SubtractInPlace(bob).ok());
  IbltDecodeResult result = alice.Decode();
  ASSERT_TRUE(result.complete);
  std::set<uint64_t> plus, minus;
  for (const auto& e : result.entries) {
    (e.count > 0 ? plus : minus).insert(e.key);
  }
  EXPECT_EQ(plus, std::set<uint64_t>(alice_only.begin(), alice_only.end()));
  EXPECT_EQ(minus, std::set<uint64_t>(bob_only.begin(), bob_only.end()));
}

TEST(IbltTest, SubtractRejectsParameterMismatch) {
  Iblt a(MakeParams(64, 4, 0, 1));
  Iblt b(MakeParams(64, 4, 0, 2));  // different seed
  EXPECT_FALSE(a.SubtractInPlace(b).ok());
}

TEST(IbltTest, SerializationRoundTrip) {
  IbltParams params = MakeParams(48, 3, 2);
  Iblt table(params);
  table.InsertKv(5, {10, 20});
  table.InsertKv(6, {30, 40});
  table.DeleteKv(7, {50, 60});
  ByteWriter w;
  table.WriteTo(&w);
  ByteReader r(w.buffer());
  auto restored = Iblt::ReadFrom(&r, params);
  ASSERT_TRUE(restored.ok());
  IbltDecodeResult a = table.Decode();
  IbltDecodeResult b = restored->Decode();
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.entries.size(), b.entries.size());
}

TEST(IbltTest, SerializationDetectsTruncation) {
  IbltParams params = MakeParams(48);
  Iblt table(params);
  ByteWriter w;
  table.WriteTo(&w);
  std::vector<uint8_t> truncated(w.buffer().begin(), w.buffer().end() - 4);
  ByteReader r(truncated.data(), truncated.size());
  auto restored = Iblt::ReadFrom(&r, params);
  EXPECT_FALSE(restored.ok());
}

TEST(IbltTest, CellCountRoundsUpToMultipleOfQ) {
  Iblt table(MakeParams(10, 4));
  EXPECT_EQ(table.num_cells() % 4, 0u);
  EXPECT_GE(table.num_cells(), 10u);
}

// Parameterized sweep: decode success across difference sizes with the
// standard ~1.5x headroom (Theorem 2.6 regime: cm keys in m cells, c < c*_q).
class IbltLoadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IbltLoadTest, DecodesDifferencesWithHeadroom) {
  const size_t diff = GetParam();
  // 2x headroom plus a floor: tiny tables lack the concentration the
  // asymptotic threshold c*_q promises (see bench_iblt_threshold).
  const size_t cells = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(diff) * 2.0), 32);
  int failures = 0;
  const int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    Iblt table(MakeParams(cells, 4, 0, static_cast<uint64_t>(1000 + trial)));
    Rng rng(static_cast<uint64_t>(7000 + trial));
    for (size_t i = 0; i < diff; ++i) {
      uint64_t k = rng.Next();
      if (i % 2 == 0) {
        table.Insert(k);
      } else {
        table.Delete(k);
      }
    }
    IbltDecodeResult result = table.Decode();
    if (!result.complete || result.entries.size() != diff) ++failures;
  }
  EXPECT_LE(failures, 1) << "diff=" << diff << " cells=" << cells;
}

INSTANTIATE_TEST_SUITE_P(Loads, IbltLoadTest,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256));

TEST(IbltTest, DuplicateKeySameSideBreaksDecodeWithoutSalting) {
  // Documents the XOR multiset limitation that motivates occurrence salting
  // (and the RIBLT's sum cells).
  Iblt table(MakeParams(64));
  table.Insert(42);
  table.Insert(42);  // cancels in every XOR cell, counts become 2
  IbltDecodeResult result = table.Decode();
  EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace rsr
